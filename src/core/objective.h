#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace amdrel::core {

/// Per-operation/per-event energy characterization of the platform — the
/// paper's future-work direction ("partitioning an application for
/// satisfying energy consumption constraints"). Defaults reflect the
/// usual fine-vs-coarse asymmetry: word-level operators in ASIC burn a
/// fraction of their FPGA equivalents [Hartenstein'01], while
/// reconfiguration and shared-memory traffic are expensive.
struct EnergyModel {
  // Fine-grain (embedded FPGA), picojoule per executed operation.
  double fpga_alu_pj = 8.0;
  double fpga_mul_pj = 30.0;
  double fpga_div_pj = 110.0;
  double fpga_mem_pj = 16.0;

  // Coarse-grain (CGC data-path, ASIC).
  double cgc_alu_pj = 1.6;
  double cgc_mul_pj = 6.5;
  double cgc_mem_pj = 12.0;

  // Events.
  double reconfiguration_pj = 600000.0;     ///< one full reconfiguration
  double transfer_pj_per_word = 14.0;       ///< fine<->coarse via memory
  double spill_pj_per_word = 14.0;          ///< temporal-partition spill
};

struct EnergyBreakdown {
  double fine_pj = 0;      ///< ops executed on the FPGA
  double coarse_pj = 0;    ///< ops executed on the CGC data-path
  double reconfig_pj = 0;  ///< temporal-partition reconfigurations
  double comm_pj = 0;      ///< fine<->coarse transfers + partition spills

  double total_pj() const {
    return fine_pj + coarse_pj + reconfig_pj + comm_pj;
  }
};

/// Per-block energy contributions of the two sides of a split, all
/// already scaled by the block's execution count. A split's breakdown is
/// the sum of the fine-side terms over unmoved blocks plus the
/// coarse-side terms over moved ones — per-block additive, which is what
/// makes the IncrementalSplit O(1) energy deltas exact (up to float
/// summation order) and the ExhaustiveStrategy energy bound admissible.
/// Priced by block_energy() in core/energy.h; mirrors
/// HybridMapper::fine_contribution_cycles on the cycle side.
struct BlockEnergy {
  double fine_pj = 0;           ///< ops on the FPGA
  double fine_comm_pj = 0;      ///< temporal-partition spill traffic
  double fine_reconfig_pj = 0;  ///< per-invocation + amortized reconfigs
  double coarse_pj = 0;         ///< ops on the CGC data-path
  double coarse_comm_pj = 0;    ///< fine<->coarse transfers
};

/// What the partitioning engine minimizes and checks constraints
/// against. kTiming is the paper's flow (equation (2), FPGA cycles);
/// kEnergy the energy-constrained variant (section 5's future work);
/// kCombined a weighted scalarization of both, for design points that
/// must trade the two off in one search.
enum class ObjectiveKind {
  kTiming,    ///< minimize total cycles; met when cycles <= constraint
  kEnergy,    ///< minimize total pJ; met when energy <= budget
  kCombined,  ///< minimize weighted sum; met when BOTH limits hold
};

/// The pluggable cost objective every PartitionStrategy searches under.
/// A split is reduced to one scalar `value` (minimized by all three
/// strategies) plus a `met` predicate (the stop/acceptance test). Both
/// are per-block additive in the underlying terms — the property the
/// IncrementalSplit O(1) deltas and the ExhaustiveStrategy bound rely
/// on; see the B&B caveat on run_methodology.
struct CostObjective {
  ObjectiveKind kind = ObjectiveKind::kTiming;
  /// Energy prices; used by kEnergy/kCombined searches and for the
  /// energy columns every report and sweep cell carries.
  EnergyModel energy;
  /// kCombined scalarization: value = cycle_weight * cycles +
  /// energy_weight * pJ. Must be non-negative (the branch-and-bound
  /// lower bound is only admissible for monotone weights).
  double cycle_weight = 1.0;
  double energy_weight = 1.0;

  /// True when the search itself needs energy tracking (kEnergy and
  /// kCombined). Timing-only runs skip the per-block energy pricing.
  bool needs_energy() const { return kind != ObjectiveKind::kTiming; }

  /// The scalar every strategy minimizes. Cycle counts convert to
  /// double exactly (they are far below 2^53), so kTiming comparisons
  /// are bit-equivalent to the original integer ones.
  double value(std::int64_t total_cycles, double energy_pj) const;

  /// The constraint test behind `stop_when_met` and PartitionReport::met.
  bool met(std::int64_t total_cycles, double energy_pj,
           std::int64_t timing_constraint, double energy_budget_pj) const;
};

/// All registered objective kinds, in presentation order.
const std::vector<ObjectiveKind>& all_objectives();

const char* objective_name(ObjectiveKind kind);

/// Inverse of objective_name ("timing", "energy", "combined"); nullopt
/// for unknown names. Shared by the CLI, sweep_io and the benches.
std::optional<ObjectiveKind> parse_objective(std::string_view name);

}  // namespace amdrel::core
