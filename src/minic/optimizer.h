#pragma once

#include "ir/tac.h"

namespace amdrel::minic {

struct OptimizeOptions {
  bool fold_constants = true;     ///< 2+3 -> 5, within a block
  bool propagate_copies = true;   ///< y = x; use(y) -> use(x), within a block
  bool simplify_algebra = true;   ///< x*1, x+0, x<<0, x*0, x-x, ...
  bool eliminate_dead_code = true;  ///< defs of never-read registers
};

/// Classic scalar cleanups over the lowered TAC, run to a fixed point.
/// All rewrites are local to a basic block except dead-code elimination,
/// which uses whole-program register read counts (registers cannot alias,
/// so a never-read register's definitions are all dead). Stores and
/// terminators are never removed.
///
/// The optimizer tightens the naive lowering (fewer kConst/kCopy
/// artifacts, pre-folded address arithmetic), which sharpens the static
/// weights the analysis step computes — the same effect the paper gets
/// from running SUIF's scalar passes before its own tools.
///
/// Returns the total number of rewrites applied.
int optimize(ir::TacProgram& program, const OptimizeOptions& options = {});

}  // namespace amdrel::minic
