#include "minic/lexer.h"

#include <cctype>
#include <map>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::minic {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwDo: return "'do'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kAmpAssign: return "'&='";
    case TokenKind::kPipeAssign: return "'|='";
    case TokenKind::kCaretAssign: return "'^='";
    case TokenKind::kShlAssign: return "'<<='";
    case TokenKind::kShrAssign: return "'>>='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& keywords() {
  static const std::map<std::string, TokenKind> map = {
      {"int", TokenKind::kKwInt},       {"void", TokenKind::kKwVoid},
      {"const", TokenKind::kKwConst},   {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},     {"while", TokenKind::kKwWhile},
      {"do", TokenKind::kKwDo},         {"for", TokenKind::kKwFor},
      {"return", TokenKind::kKwReturn}, {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
  };
  return map;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      Token token;
      token.loc = loc_;
      if (at_end()) {
        token.kind = TokenKind::kEof;
        tokens.push_back(token);
        return tokens;
      }
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        lex_identifier(token);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number(token);
      } else {
        lex_operator(token);
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      loc_.line++;
      loc_.column = 1;
    } else {
      loc_.column++;
    }
    return c;
  }
  bool match(char expected) {
    if (at_end() || peek() != expected) return false;
    advance();
    return true;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        const SourceLoc start = loc_;
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          require(!at_end(), cat("lexer: unterminated block comment at line ",
                                 start.line));
          advance();
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  void lex_identifier(Token& token) {
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      text.push_back(advance());
    }
    const auto it = keywords().find(text);
    token.kind = it == keywords().end() ? TokenKind::kIdentifier : it->second;
    token.text = std::move(text);
  }

  void lex_number(Token& token) {
    std::string text;
    int base = 10;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      base = 16;
      while (!at_end() &&
             std::isxdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
      require(!text.empty(),
              cat("lexer: bad hex literal at line ", token.loc.line));
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    }
    errno = 0;
    token.kind = TokenKind::kIntLiteral;
    token.int_value = std::stoll(text, nullptr, base);
    token.text = std::move(text);
    require(token.int_value <= 0x7fffffffLL,
            cat("lexer: integer literal out of 32-bit range at line ",
                token.loc.line));
  }

  void lex_operator(Token& token) {
    const char c = advance();
    auto set = [&](TokenKind kind) { token.kind = kind; };
    switch (c) {
      case '(': set(TokenKind::kLParen); break;
      case ')': set(TokenKind::kRParen); break;
      case '{': set(TokenKind::kLBrace); break;
      case '}': set(TokenKind::kRBrace); break;
      case '[': set(TokenKind::kLBracket); break;
      case ']': set(TokenKind::kRBracket); break;
      case ',': set(TokenKind::kComma); break;
      case ';': set(TokenKind::kSemicolon); break;
      case '~': set(TokenKind::kTilde); break;
      case '+':
        set(match('=') ? TokenKind::kPlusAssign
                       : (match('+') ? TokenKind::kPlusPlus : TokenKind::kPlus));
        break;
      case '-':
        set(match('=') ? TokenKind::kMinusAssign
                       : (match('-') ? TokenKind::kMinusMinus
                                     : TokenKind::kMinus));
        break;
      case '*':
        set(match('=') ? TokenKind::kStarAssign : TokenKind::kStar);
        break;
      case '/':
        set(match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash);
        break;
      case '%':
        set(match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent);
        break;
      case '&':
        set(match('&') ? TokenKind::kAmpAmp
                       : (match('=') ? TokenKind::kAmpAssign
                                     : TokenKind::kAmp));
        break;
      case '|':
        set(match('|') ? TokenKind::kPipePipe
                       : (match('=') ? TokenKind::kPipeAssign
                                     : TokenKind::kPipe));
        break;
      case '^':
        set(match('=') ? TokenKind::kCaretAssign : TokenKind::kCaret);
        break;
      case '!':
        set(match('=') ? TokenKind::kNe : TokenKind::kBang);
        break;
      case '=':
        set(match('=') ? TokenKind::kEq : TokenKind::kAssign);
        break;
      case '<':
        if (match('<')) {
          set(match('=') ? TokenKind::kShlAssign : TokenKind::kShl);
        } else {
          set(match('=') ? TokenKind::kLe : TokenKind::kLt);
        }
        break;
      case '>':
        if (match('>')) {
          set(match('=') ? TokenKind::kShrAssign : TokenKind::kShr);
        } else {
          set(match('=') ? TokenKind::kGe : TokenKind::kGt);
        }
        break;
      default:
        fail(cat("lexer: unexpected character '", std::string(1, c),
                 "' at line ", token.loc.line, ", column ",
                 token.loc.column - 1));
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace amdrel::minic
