#include "minic/parser.h"

#include "minic/lexer.h"
#include "support/error.h"
#include "support/strings.h"

namespace amdrel::minic {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program program;
    while (!check(TokenKind::kEof)) {
      parse_top_level(program);
    }
    return program;
  }

 private:
  // ---- token helpers ---------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& advance() { return tokens_[pos_++]; }
  const Token& expect(TokenKind kind, const char* context) {
    require(check(kind),
            cat("parse error at line ", peek().loc.line, ", column ",
                peek().loc.column, ": expected ", token_kind_name(kind),
                " in ", context, ", got ", token_kind_name(peek().kind)));
    return advance();
  }
  [[noreturn]] void error_here(const std::string& message) const {
    fail(cat("parse error at line ", peek().loc.line, ", column ",
             peek().loc.column, ": ", message));
  }

  // ---- declarations ----------------------------------------------------
  void parse_top_level(Program& program) {
    const bool is_const = match(TokenKind::kKwConst);
    if (check(TokenKind::kKwVoid) ||
        (check(TokenKind::kKwInt) && peek(1).kind == TokenKind::kIdentifier &&
         peek(2).kind == TokenKind::kLParen)) {
      require(!is_const, cat("parse error at line ", peek().loc.line,
                             ": functions cannot be const"));
      program.functions.push_back(parse_function());
    } else {
      program.globals.push_back(parse_decl(is_const));
    }
  }

  FuncDecl parse_function() {
    FuncDecl func;
    func.loc = peek().loc;
    if (match(TokenKind::kKwVoid)) {
      func.returns_value = false;
    } else {
      expect(TokenKind::kKwInt, "function declaration");
      func.returns_value = true;
    }
    func.name = expect(TokenKind::kIdentifier, "function declaration").text;
    expect(TokenKind::kLParen, "function declaration");
    if (!check(TokenKind::kRParen)) {
      do {
        func.params.push_back(parse_param());
      } while (match(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "function declaration");
    func.body = parse_block();
    return func;
  }

  ParamDecl parse_param() {
    ParamDecl param;
    param.loc = peek().loc;
    expect(TokenKind::kKwInt, "parameter");
    param.name = expect(TokenKind::kIdentifier, "parameter").text;
    while (match(TokenKind::kLBracket)) {
      param.is_array = true;
      if (check(TokenKind::kIntLiteral)) {
        param.dims.push_back(advance().int_value);
      } else {
        require(param.dims.empty(),
                cat("parse error at line ", param.loc.line,
                    ": only the first dimension of an array parameter may "
                    "be omitted"));
        param.dims.push_back(0);  // "any length", 1-D only
      }
      expect(TokenKind::kRBracket, "parameter");
    }
    if (param.is_array && param.dims.size() == 1 && param.dims[0] == 0) {
      param.dims.clear();
    }
    return param;
  }

  /// Parses "int name (= expr | [N]... (= {list})?) ;" — `const`/`int`
  /// keywords already consumed by the caller up to `is_const`.
  StmtPtr parse_decl(bool is_const) {
    expect(TokenKind::kKwInt, "declaration");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kDecl;
    stmt->is_const = is_const;
    stmt->loc = peek().loc;
    stmt->name = expect(TokenKind::kIdentifier, "declaration").text;
    while (match(TokenKind::kLBracket)) {
      const Token& size = expect(TokenKind::kIntLiteral, "array size");
      require(size.int_value > 0, cat("parse error at line ", size.loc.line,
                                      ": array size must be positive"));
      stmt->dims.push_back(size.int_value);
      expect(TokenKind::kRBracket, "declaration");
    }
    if (match(TokenKind::kAssign)) {
      if (stmt->dims.empty()) {
        stmt->value = parse_expr();
      } else {
        expect(TokenKind::kLBrace, "array initializer");
        if (!check(TokenKind::kRBrace)) {
          do {
            stmt->init_list.push_back(parse_init_constant());
          } while (match(TokenKind::kComma));
        }
        expect(TokenKind::kRBrace, "array initializer");
      }
    }
    expect(TokenKind::kSemicolon, "declaration");
    return stmt;
  }

  std::int64_t parse_init_constant() {
    const bool negative = match(TokenKind::kMinus);
    const Token& literal = expect(TokenKind::kIntLiteral, "array initializer");
    return negative ? -literal.int_value : literal.int_value;
  }

  // ---- statements --------------------------------------------------------
  StmtPtr parse_block() {
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    block->loc = peek().loc;
    expect(TokenKind::kLBrace, "block");
    while (!check(TokenKind::kRBrace)) {
      require(!check(TokenKind::kEof), "parse error: unterminated block");
      block->body.push_back(parse_statement());
    }
    expect(TokenKind::kRBrace, "block");
    return block;
  }

  StmtPtr parse_statement() {
    switch (peek().kind) {
      case TokenKind::kLBrace:
        return parse_block();
      case TokenKind::kKwConst: {
        advance();
        return parse_decl(/*is_const=*/true);
      }
      case TokenKind::kKwInt:
        return parse_decl(/*is_const=*/false);
      case TokenKind::kKwIf:
        return parse_if();
      case TokenKind::kKwWhile:
        return parse_while();
      case TokenKind::kKwDo:
        return parse_do_while();
      case TokenKind::kKwFor:
        return parse_for();
      case TokenKind::kKwReturn: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kReturn;
        stmt->loc = advance().loc;
        if (!check(TokenKind::kSemicolon)) stmt->value = parse_expr();
        expect(TokenKind::kSemicolon, "return statement");
        return stmt;
      }
      case TokenKind::kKwBreak: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kBreak;
        stmt->loc = advance().loc;
        expect(TokenKind::kSemicolon, "break statement");
        return stmt;
      }
      case TokenKind::kKwContinue: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kContinue;
        stmt->loc = advance().loc;
        expect(TokenKind::kSemicolon, "continue statement");
        return stmt;
      }
      default: {
        StmtPtr stmt = parse_assign_or_expr();
        expect(TokenKind::kSemicolon, "statement");
        return stmt;
      }
    }
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->loc = advance().loc;  // 'if'
    expect(TokenKind::kLParen, "if condition");
    stmt->cond = parse_expr();
    expect(TokenKind::kRParen, "if condition");
    stmt->then_stmt = parse_statement();
    if (match(TokenKind::kKwElse)) stmt->else_stmt = parse_statement();
    return stmt;
  }

  StmtPtr parse_while() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->loc = advance().loc;  // 'while'
    expect(TokenKind::kLParen, "while condition");
    stmt->cond = parse_expr();
    expect(TokenKind::kRParen, "while condition");
    stmt->body_stmt = parse_statement();
    return stmt;
  }

  StmtPtr parse_do_while() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kDoWhile;
    stmt->loc = advance().loc;  // 'do'
    stmt->body_stmt = parse_statement();
    expect(TokenKind::kKwWhile, "do-while");
    expect(TokenKind::kLParen, "do-while condition");
    stmt->cond = parse_expr();
    expect(TokenKind::kRParen, "do-while condition");
    expect(TokenKind::kSemicolon, "do-while");
    return stmt;
  }

  StmtPtr parse_for() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFor;
    stmt->loc = advance().loc;  // 'for'
    expect(TokenKind::kLParen, "for header");
    if (!match(TokenKind::kSemicolon)) {
      if (check(TokenKind::kKwInt)) {
        stmt->for_init = parse_decl(/*is_const=*/false);  // eats ';'
      } else {
        stmt->for_init = parse_assign_or_expr();
        expect(TokenKind::kSemicolon, "for header");
      }
    }
    if (!check(TokenKind::kSemicolon)) stmt->cond = parse_expr();
    expect(TokenKind::kSemicolon, "for header");
    if (!check(TokenKind::kRParen)) stmt->for_step = parse_assign_or_expr();
    expect(TokenKind::kRParen, "for header");
    stmt->body_stmt = parse_statement();
    return stmt;
  }

  /// assignment | compound assignment | ++/-- | expression statement
  StmtPtr parse_assign_or_expr() {
    ExprPtr first = parse_expr();
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = first->loc;

    auto compound_of = [](TokenKind kind) -> std::optional<BinaryOp> {
      switch (kind) {
        case TokenKind::kPlusAssign: return BinaryOp::kAdd;
        case TokenKind::kMinusAssign: return BinaryOp::kSub;
        case TokenKind::kStarAssign: return BinaryOp::kMul;
        case TokenKind::kSlashAssign: return BinaryOp::kDiv;
        case TokenKind::kPercentAssign: return BinaryOp::kMod;
        case TokenKind::kAmpAssign: return BinaryOp::kAnd;
        case TokenKind::kPipeAssign: return BinaryOp::kOr;
        case TokenKind::kCaretAssign: return BinaryOp::kXor;
        case TokenKind::kShlAssign: return BinaryOp::kShl;
        case TokenKind::kShrAssign: return BinaryOp::kShr;
        default: return std::nullopt;
      }
    };

    if (check(TokenKind::kAssign)) {
      advance();
      stmt->kind = Stmt::Kind::kAssign;
      stmt->target = std::move(first);
      stmt->value = parse_expr();
      return stmt;
    }
    if (const auto op = compound_of(peek().kind)) {
      advance();
      stmt->kind = Stmt::Kind::kAssign;
      stmt->target = std::move(first);
      stmt->compound = op;
      stmt->value = parse_expr();
      return stmt;
    }
    if (check(TokenKind::kPlusPlus) || check(TokenKind::kMinusMinus)) {
      const bool increment = advance().kind == TokenKind::kPlusPlus;
      stmt->kind = Stmt::Kind::kAssign;
      stmt->target = std::move(first);
      stmt->compound = increment ? BinaryOp::kAdd : BinaryOp::kSub;
      auto one = std::make_unique<Expr>();
      one->kind = Expr::Kind::kIntLit;
      one->value = 1;
      one->loc = stmt->loc;
      stmt->value = std::move(one);
      return stmt;
    }
    stmt->kind = Stmt::Kind::kExpr;
    stmt->value = std::move(first);
    return stmt;
  }

  // ---- expressions (precedence climbing) ---------------------------------
  ExprPtr parse_expr() { return parse_logical_or(); }

  ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kBinary;
    expr->bin_op = op;
    expr->loc = lhs->loc;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  ExprPtr parse_logical_or() {
    ExprPtr lhs = parse_logical_and();
    while (match(TokenKind::kPipePipe)) {
      lhs = make_binary(BinaryOp::kLogicalOr, std::move(lhs),
                        parse_logical_and());
    }
    return lhs;
  }

  ExprPtr parse_logical_and() {
    ExprPtr lhs = parse_bit_or();
    while (match(TokenKind::kAmpAmp)) {
      lhs = make_binary(BinaryOp::kLogicalAnd, std::move(lhs), parse_bit_or());
    }
    return lhs;
  }

  ExprPtr parse_bit_or() {
    ExprPtr lhs = parse_bit_xor();
    while (match(TokenKind::kPipe)) {
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), parse_bit_xor());
    }
    return lhs;
  }

  ExprPtr parse_bit_xor() {
    ExprPtr lhs = parse_bit_and();
    while (match(TokenKind::kCaret)) {
      lhs = make_binary(BinaryOp::kXor, std::move(lhs), parse_bit_and());
    }
    return lhs;
  }

  ExprPtr parse_bit_and() {
    ExprPtr lhs = parse_equality();
    while (match(TokenKind::kAmp)) {
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), parse_equality());
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (check(TokenKind::kEq) || check(TokenKind::kNe)) {
      const BinaryOp op = advance().kind == TokenKind::kEq ? BinaryOp::kEq
                                                           : BinaryOp::kNe;
      lhs = make_binary(op, std::move(lhs), parse_relational());
    }
    return lhs;
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_shift();
    while (true) {
      BinaryOp op;
      if (check(TokenKind::kLt)) op = BinaryOp::kLt;
      else if (check(TokenKind::kLe)) op = BinaryOp::kLe;
      else if (check(TokenKind::kGt)) op = BinaryOp::kGt;
      else if (check(TokenKind::kGe)) op = BinaryOp::kGe;
      else return lhs;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_shift());
    }
  }

  ExprPtr parse_shift() {
    ExprPtr lhs = parse_additive();
    while (check(TokenKind::kShl) || check(TokenKind::kShr)) {
      const BinaryOp op = advance().kind == TokenKind::kShl ? BinaryOp::kShl
                                                            : BinaryOp::kShr;
      lhs = make_binary(op, std::move(lhs), parse_additive());
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
      const BinaryOp op = advance().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                                             : BinaryOp::kSub;
      lhs = make_binary(op, std::move(lhs), parse_multiplicative());
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (true) {
      BinaryOp op;
      if (check(TokenKind::kStar)) op = BinaryOp::kMul;
      else if (check(TokenKind::kSlash)) op = BinaryOp::kDiv;
      else if (check(TokenKind::kPercent)) op = BinaryOp::kMod;
      else return lhs;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_unary());
    }
  }

  ExprPtr parse_unary() {
    UnaryOp op;
    if (match(TokenKind::kMinus)) op = UnaryOp::kNeg;
    else if (match(TokenKind::kTilde)) op = UnaryOp::kBitNot;
    else if (match(TokenKind::kBang)) op = UnaryOp::kLogicalNot;
    else if (match(TokenKind::kPlus)) return parse_unary();  // unary +
    else return parse_postfix();
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kUnary;
    expr->un_op = op;
    expr->loc = peek().loc;
    expr->lhs = parse_unary();
    return expr;
  }

  ExprPtr parse_postfix() {
    if (check(TokenKind::kIntLiteral)) {
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kIntLit;
      const Token& token = advance();
      expr->value = token.int_value;
      expr->loc = token.loc;
      return expr;
    }
    if (match(TokenKind::kLParen)) {
      ExprPtr inner = parse_expr();
      expect(TokenKind::kRParen, "parenthesized expression");
      return inner;
    }
    if (check(TokenKind::kIdentifier)) {
      const Token& token = advance();
      if (match(TokenKind::kLParen)) {
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::kCall;
        call->name = token.text;
        call->loc = token.loc;
        if (!check(TokenKind::kRParen)) {
          do {
            call->args.push_back(parse_expr());
          } while (match(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "call");
        return call;
      }
      if (check(TokenKind::kLBracket)) {
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::kIndex;
        index->name = token.text;
        index->loc = token.loc;
        while (match(TokenKind::kLBracket)) {
          index->indices.push_back(parse_expr());
          expect(TokenKind::kRBracket, "array index");
        }
        return index;
      }
      auto ref = std::make_unique<Expr>();
      ref->kind = Expr::Kind::kVarRef;
      ref->name = token.text;
      ref->loc = token.loc;
      return ref;
    }
    error_here(cat("unexpected ", token_kind_name(peek().kind),
                   " in expression"));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  return Parser(tokenize(source)).run();
}

}  // namespace amdrel::minic
