#pragma once

#include <string>

#include "ir/tac.h"
#include "minic/ast.h"

namespace amdrel::minic {

/// One-stop front-end: tokenize, parse, check and lower MiniC source into
/// an executable TAC program (from which ir::build_cdfg derives the CDFG
/// the methodology consumes). Throws Error with source locations on any
/// lexical/syntactic/semantic problem.
ir::TacProgram compile(const std::string& source,
                       const std::string& program_name = "main");

}  // namespace amdrel::minic
