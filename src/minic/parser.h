#pragma once

#include <string>

#include "minic/ast.h"

namespace amdrel::minic {

/// Parses MiniC source into an AST. Throws Error with source location on
/// the first syntax error.
Program parse(const std::string& source);

}  // namespace amdrel::minic
