#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace amdrel::minic {

/// Source position, 1-based, for diagnostics.
struct SourceLoc {
  int line = 1;
  int column = 1;
};

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kIntLiteral,
  // keywords
  kKwInt,
  kKwVoid,
  kKwConst,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwDo,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  // operators
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPercentAssign,
  kAmpAssign,
  kPipeAssign,
  kCaretAssign,
  kShlAssign,
  kShrAssign,
  kPlusPlus,
  kMinusMinus,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kAmpAmp,
  kPipePipe,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::int64_t int_value = 0;
  SourceLoc loc;
};

std::string_view token_kind_name(TokenKind kind);

}  // namespace amdrel::minic
