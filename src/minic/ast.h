#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minic/token.h"

namespace amdrel::minic {

/// MiniC is the C subset the front-end accepts — rich enough for the
/// paper's DSP/multimedia workloads (32-bit ints, fixed-size const/plain
/// arrays up to 2-D, functions, loops, full expression grammar with
/// short-circuit && and ||), and deliberately without pointers, structs
/// or recursion so every program lowers to one flat CDFG the methodology
/// consumes (the paper's SUIF-based flow made the same assumptions for
/// the code handed to the partitioner).

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
};

enum class UnaryOp : std::uint8_t {
  kNeg,         // -x
  kBitNot,      // ~x
  kLogicalNot,  // !x
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kIntLit,   ///< value
    kVarRef,   ///< name
    kIndex,    ///< name[indices...]
    kUnary,    ///< un_op lhs
    kBinary,   ///< lhs bin_op rhs
    kCall,     ///< name(args...)
  };

  Kind kind = Kind::kIntLit;
  SourceLoc loc;

  std::int64_t value = 0;             // kIntLit
  std::string name;                   // kVarRef / kIndex / kCall
  std::vector<ExprPtr> indices;       // kIndex
  std::vector<ExprPtr> args;          // kCall
  UnaryOp un_op = UnaryOp::kNeg;      // kUnary
  BinaryOp bin_op = BinaryOp::kAdd;   // kBinary
  ExprPtr lhs;                        // kUnary operand / kBinary lhs
  ExprPtr rhs;                        // kBinary rhs
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kBlock,     ///< body
    kDecl,      ///< name, dims, is_const, init / init_list
    kAssign,    ///< target (= | op=) value
    kIf,        ///< cond, then_stmt, else_stmt?
    kWhile,     ///< cond, body_stmt
    kDoWhile,   ///< body_stmt, cond
    kFor,       ///< for_init?, cond?, for_step?, body_stmt
    kReturn,    ///< value?
    kBreak,
    kContinue,
    kExpr,      ///< value (expression evaluated for effect, i.e. a call)
  };

  Kind kind = Kind::kBlock;
  SourceLoc loc;

  std::vector<StmtPtr> body;                 // kBlock
  std::string name;                          // kDecl
  bool is_const = false;                     // kDecl
  std::vector<std::int64_t> dims;            // kDecl: empty => scalar
  std::vector<std::int64_t> init_list;       // kDecl: array initializer
  ExprPtr target;                            // kAssign (VarRef or Index)
  std::optional<BinaryOp> compound;          // kAssign: nullopt for plain =
  ExprPtr value;                             // kAssign / kReturn / kExpr /
                                             // kDecl scalar init
  ExprPtr cond;                              // kIf / kWhile / kDoWhile / kFor
  StmtPtr then_stmt;                         // kIf
  StmtPtr else_stmt;                         // kIf (may be null)
  StmtPtr body_stmt;                         // loops
  StmtPtr for_init;                          // kFor (kDecl or kAssign)
  StmtPtr for_step;                          // kFor (kAssign or kExpr)
};

struct ParamDecl {
  std::string name;
  bool is_array = false;
  /// Declared dimensions; for 1-D parameters an empty vector means
  /// "int a[]" (accepts any length). Multi-dimensional parameters must
  /// declare all dimensions so indexing can be flattened.
  std::vector<std::int64_t> dims;
  SourceLoc loc;
};

struct FuncDecl {
  std::string name;
  bool returns_value = false;  ///< int f() vs void f()
  std::vector<ParamDecl> params;
  StmtPtr body;
  SourceLoc loc;
};

struct Program {
  std::vector<StmtPtr> globals;  ///< kDecl statements
  std::vector<FuncDecl> functions;
};

}  // namespace amdrel::minic
