#include "minic/optimizer.h"

#include <map>
#include <optional>
#include <vector>

#include "support/error.h"

namespace amdrel::minic {

namespace {

using ir::OpKind;
using ir::TacInstr;
using ir::TacProgram;

std::int32_t wrap(std::int64_t value) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(value));
}

/// Compile-time evaluation mirroring the interpreter's semantics; returns
/// nullopt for trapping cases (division by zero stays a runtime error).
std::optional<std::int32_t> fold(OpKind op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case OpKind::kAdd: return wrap(std::int64_t{a} + b);
    case OpKind::kSub: return wrap(std::int64_t{a} - b);
    case OpKind::kMul: return wrap(std::int64_t{a} * b);
    case OpKind::kDiv:
      if (b == 0 || (a == INT32_MIN && b == -1)) return std::nullopt;
      return a / b;
    case OpKind::kMod:
      if (b == 0 || (a == INT32_MIN && b == -1)) return std::nullopt;
      return a % b;
    case OpKind::kAnd: return a & b;
    case OpKind::kOr: return a | b;
    case OpKind::kXor: return a ^ b;
    case OpKind::kShl: return wrap(std::int64_t{a} << (b & 31));
    case OpKind::kShr: return a >> (b & 31);
    case OpKind::kCmpEq: return a == b;
    case OpKind::kCmpNe: return a != b;
    case OpKind::kCmpLt: return a < b;
    case OpKind::kCmpLe: return a <= b;
    case OpKind::kCmpGt: return a > b;
    case OpKind::kCmpGe: return a >= b;
    default: return std::nullopt;
  }
}

bool is_binary(OpKind op) {
  switch (op) {
    case OpKind::kConst:
    case OpKind::kCopy:
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kLoad:
    case OpKind::kStore:
      return false;
    default:
      return true;
  }
}

class Optimizer {
 public:
  Optimizer(TacProgram& program, const OptimizeOptions& options)
      : prog_(program), options_(options) {}

  int run() {
    int total = 0;
    int pass_changes;
    int guard = 0;
    do {
      pass_changes = 0;
      for (auto& block : prog_.blocks) pass_changes += local_pass(block);
      if (options_.eliminate_dead_code) pass_changes += dce_pass();
      total += pass_changes;
      require(++guard < 64, "optimizer: fixed point not reached");
    } while (pass_changes > 0);
    prog_.validate();
    return total;
  }

 private:
  /// Constant folding, copy propagation and algebraic simplification
  /// within one block.
  int local_pass(ir::TacBlock& block) {
    int changes = 0;
    std::map<int, std::int32_t> constants;  // reg -> known value
    std::map<int, int> copies;              // reg -> original reg

    auto canonical = [&](int reg) {
      const auto it = copies.find(reg);
      return it == copies.end() ? reg : it->second;
    };
    auto known = [&](int reg) -> std::optional<std::int32_t> {
      const auto it = constants.find(reg);
      if (it == constants.end()) return std::nullopt;
      return it->second;
    };
    auto invalidate = [&](int reg) {
      constants.erase(reg);
      copies.erase(reg);
      // Any copy chain rooted at reg is broken by the redefinition.
      for (auto it = copies.begin(); it != copies.end();) {
        it = it->second == reg ? copies.erase(it) : std::next(it);
      }
    };
    auto make_const = [&](TacInstr& instr, std::int32_t value) {
      instr.op = OpKind::kConst;
      instr.imm = value;
      instr.src1 = instr.src2 = -1;
      changes++;
    };
    auto make_copy = [&](TacInstr& instr, int src) {
      instr.op = OpKind::kCopy;
      instr.src1 = src;
      instr.src2 = -1;
      changes++;
    };

    for (TacInstr& instr : block.body) {
      // Rewrite sources through copy chains first.
      if (options_.propagate_copies) {
        if (instr.op != OpKind::kConst && instr.src1 >= 0) {
          const int c = canonical(instr.src1);
          if (c != instr.src1) {
            instr.src1 = c;
            changes++;
          }
        }
        if (instr.src2 >= 0) {
          const int c = canonical(instr.src2);
          if (c != instr.src2) {
            instr.src2 = c;
            changes++;
          }
        }
      }

      // Fold / simplify.
      if (options_.fold_constants && is_binary(instr.op)) {
        const auto a = known(instr.src1);
        const auto b = known(instr.src2);
        if (a && b) {
          if (const auto value = fold(instr.op, *a, *b)) {
            make_const(instr, *value);
          }
        } else if (options_.simplify_algebra && (a || b)) {
          simplify_with_one_const(instr, a, b, make_const, make_copy);
        } else if (options_.simplify_algebra && instr.src1 == instr.src2) {
          simplify_same_operand(instr, make_const, make_copy);
        }
      } else if (options_.fold_constants && instr.op == OpKind::kNot) {
        if (const auto a = known(instr.src1)) make_const(instr, ~*a);
      } else if (options_.fold_constants && instr.op == OpKind::kNeg) {
        if (const auto a = known(instr.src1)) {
          make_const(instr, wrap(-std::int64_t{*a}));
        }
      } else if (instr.op == OpKind::kCopy) {
        if (const auto a = known(instr.src1)) make_const(instr, *a);
      }

      // Update the local lattice.
      if (instr.dst >= 0) {
        invalidate(instr.dst);
        if (instr.op == OpKind::kConst) {
          constants[instr.dst] = wrap(instr.imm);
        } else if (instr.op == OpKind::kCopy && instr.src1 != instr.dst) {
          copies[instr.dst] = canonical(instr.src1);
        }
      }
    }

    // The terminator's condition can fold to a constant branch.
    if (options_.propagate_copies &&
        block.term.kind == ir::Terminator::Kind::kBr) {
      const int c = canonical(block.term.cond_reg);
      if (c != block.term.cond_reg) {
        block.term.cond_reg = c;
        changes++;
      }
    }
    if (options_.fold_constants &&
        block.term.kind == ir::Terminator::Kind::kBr) {
      if (const auto value = known(block.term.cond_reg)) {
        block.term.kind = ir::Terminator::Kind::kJmp;
        block.term.if_true =
            *value != 0 ? block.term.if_true : block.term.if_false;
        block.term.if_false = ir::kNoBlock;
        block.term.cond_reg = -1;
        changes++;
      }
    }
    if (options_.propagate_copies &&
        block.term.kind == ir::Terminator::Kind::kRet &&
        block.term.ret_reg >= 0) {
      const int c = canonical(block.term.ret_reg);
      if (c != block.term.ret_reg) {
        block.term.ret_reg = c;
        changes++;
      }
    }
    return changes;
  }

  template <typename MakeConst, typename MakeCopy>
  void simplify_with_one_const(TacInstr& instr,
                               std::optional<std::int32_t> a,
                               std::optional<std::int32_t> b,
                               MakeConst&& make_const, MakeCopy&& make_copy) {
    const bool const_is_lhs = a.has_value();
    const std::int32_t value = const_is_lhs ? *a : *b;
    const int other = const_is_lhs ? instr.src2 : instr.src1;
    switch (instr.op) {
      case OpKind::kAdd:
      case OpKind::kOr:
      case OpKind::kXor:
        if (value == 0) make_copy(instr, other);
        break;
      case OpKind::kSub:
        if (!const_is_lhs && value == 0) make_copy(instr, other);
        break;
      case OpKind::kMul:
        if (value == 0) make_const(instr, 0);
        else if (value == 1) make_copy(instr, other);
        break;
      case OpKind::kAnd:
        if (value == 0) make_const(instr, 0);
        else if (value == -1) make_copy(instr, other);
        break;
      case OpKind::kShl:
      case OpKind::kShr:
        if (!const_is_lhs && (value & 31) == 0) make_copy(instr, other);
        else if (const_is_lhs && value == 0) make_const(instr, 0);
        break;
      case OpKind::kDiv:
        if (!const_is_lhs && value == 1) make_copy(instr, other);
        break;
      default:
        break;
    }
  }

  template <typename MakeConst, typename MakeCopy>
  void simplify_same_operand(TacInstr& instr, MakeConst&& make_const,
                             MakeCopy&& make_copy) {
    switch (instr.op) {
      case OpKind::kSub:
      case OpKind::kXor:
        make_const(instr, 0);
        break;
      case OpKind::kAnd:
      case OpKind::kOr:
        make_copy(instr, instr.src1);
        break;
      case OpKind::kCmpEq:
      case OpKind::kCmpLe:
      case OpKind::kCmpGe:
        make_const(instr, 1);
        break;
      case OpKind::kCmpNe:
      case OpKind::kCmpLt:
      case OpKind::kCmpGt:
        make_const(instr, 0);
        break;
      default:
        break;
    }
  }

  /// Removes definitions of registers no instruction or terminator reads.
  /// Safe globally: registers are not addressable, so read counts are
  /// exact. Stores always survive.
  int dce_pass() {
    std::vector<bool> read(static_cast<std::size_t>(prog_.num_regs), false);
    for (const auto& block : prog_.blocks) {
      for (const TacInstr& instr : block.body) {
        if (instr.op != OpKind::kConst && instr.src1 >= 0) {
          read[instr.src1] = true;
        }
        if (instr.src2 >= 0) read[instr.src2] = true;
      }
      if (block.term.cond_reg >= 0) read[block.term.cond_reg] = true;
      if (block.term.ret_reg >= 0) read[block.term.ret_reg] = true;
    }
    int removed = 0;
    for (auto& block : prog_.blocks) {
      std::vector<TacInstr> kept;
      kept.reserve(block.body.size());
      for (const TacInstr& instr : block.body) {
        const bool dead = instr.op != OpKind::kStore && instr.dst >= 0 &&
                          !read[instr.dst];
        if (dead) {
          removed++;
        } else {
          kept.push_back(instr);
        }
      }
      block.body = std::move(kept);
    }
    return removed;
  }

  TacProgram& prog_;
  OptimizeOptions options_;
};

}  // namespace

int optimize(ir::TacProgram& program, const OptimizeOptions& options) {
  return Optimizer(program, options).run();
}

}  // namespace amdrel::minic
