#include "minic/sema.h"

#include <map>
#include <set>
#include <vector>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::minic {

namespace {

struct SymbolInfo {
  bool is_array = false;
  bool is_const = false;
  bool any_length = false;  ///< 1-D array parameter declared as int a[]
  std::vector<std::int64_t> dims;
};

[[noreturn]] void sema_error(SourceLoc loc, const std::string& message) {
  fail(cat("semantic error at line ", loc.line, ", column ", loc.column, ": ",
           message));
}

class Checker {
 public:
  explicit Checker(const Program& program, bool require_main)
      : program_(program), require_main_(require_main) {}

  void run() {
    for (const auto& function : program_.functions) {
      require(functions_.emplace(function.name, &function).second,
              cat("semantic error at line ", function.loc.line,
                  ": redefinition of function '", function.name, "'"));
    }
    if (require_main_) {
      const auto it = functions_.find("main");
      require(it != functions_.end(),
              "semantic error: program has no 'main' function");
      require(it->second->params.empty(),
              "semantic error: 'main' must take no parameters");
    }

    push_scope();
    for (const auto& global : program_.globals) check_stmt(*global);
    for (const auto& function : program_.functions) check_function(function);
    pop_scope();

    check_recursion();
  }

 private:
  // ---- scopes -----------------------------------------------------------
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(SourceLoc loc, const std::string& name, SymbolInfo info) {
    if (functions_.count(name) != 0) {
      sema_error(loc, cat("'", name, "' is already a function name"));
    }
    if (!scopes_.back().emplace(name, std::move(info)).second) {
      sema_error(loc, cat("redeclaration of '", name, "' in the same scope"));
    }
  }

  const SymbolInfo* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  const SymbolInfo& resolve(SourceLoc loc, const std::string& name) const {
    const SymbolInfo* info = lookup(name);
    if (info == nullptr) sema_error(loc, cat("undeclared identifier '", name, "'"));
    return *info;
  }

  // ---- functions ----------------------------------------------------------
  void check_function(const FuncDecl& function) {
    current_function_ = &function;
    push_scope();
    for (const auto& param : function.params) {
      SymbolInfo info;
      info.is_array = param.is_array;
      info.any_length = param.is_array && param.dims.empty();
      info.dims = param.dims;
      declare(param.loc, param.name, std::move(info));
    }
    check_stmt(*function.body);
    pop_scope();
    current_function_ = nullptr;
  }

  // ---- statements -----------------------------------------------------------
  void check_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        push_scope();
        for (const auto& child : stmt.body) check_stmt(*child);
        pop_scope();
        break;
      case Stmt::Kind::kDecl:
        check_decl(stmt);
        break;
      case Stmt::Kind::kAssign:
        check_assign(stmt);
        break;
      case Stmt::Kind::kIf:
        check_expr_value(*stmt.cond);
        check_stmt(*stmt.then_stmt);
        if (stmt.else_stmt) check_stmt(*stmt.else_stmt);
        break;
      case Stmt::Kind::kWhile:
      case Stmt::Kind::kDoWhile:
        check_expr_value(*stmt.cond);
        ++loop_depth_;
        check_stmt(*stmt.body_stmt);
        --loop_depth_;
        break;
      case Stmt::Kind::kFor:
        push_scope();  // the induction variable's scope
        if (stmt.for_init) check_stmt(*stmt.for_init);
        if (stmt.cond) check_expr_value(*stmt.cond);
        if (stmt.for_step) check_stmt(*stmt.for_step);
        ++loop_depth_;
        check_stmt(*stmt.body_stmt);
        --loop_depth_;
        pop_scope();
        break;
      case Stmt::Kind::kReturn:
        if (current_function_ == nullptr) {
          sema_error(stmt.loc, "return outside of a function");
        }
        if (current_function_->returns_value) {
          if (!stmt.value) {
            sema_error(stmt.loc, cat("function '", current_function_->name,
                                     "' must return a value"));
          }
          check_expr_value(*stmt.value);
        } else if (stmt.value) {
          sema_error(stmt.loc, cat("void function '", current_function_->name,
                                   "' cannot return a value"));
        }
        break;
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        if (loop_depth_ == 0) {
          sema_error(stmt.loc, "break/continue outside of a loop");
        }
        break;
      case Stmt::Kind::kExpr:
        // Calls may discard their value; anything else is checked as value.
        if (stmt.value->kind == Expr::Kind::kCall) {
          check_call(*stmt.value, /*value_needed=*/false);
        } else {
          check_expr_value(*stmt.value);
        }
        break;
    }
  }

  void check_decl(const Stmt& stmt) {
    SymbolInfo info;
    info.is_array = !stmt.dims.empty();
    info.is_const = stmt.is_const;
    info.dims = stmt.dims;
    if (stmt.dims.size() > 2) {
      sema_error(stmt.loc, "arrays of more than two dimensions are not "
                           "supported");
    }
    if (info.is_array) {
      std::int64_t total = 1;
      for (std::int64_t dim : stmt.dims) total *= dim;
      if (!stmt.init_list.empty() &&
          static_cast<std::int64_t>(stmt.init_list.size()) != total) {
        sema_error(stmt.loc,
                   cat("array '", stmt.name, "' has ", total,
                       " elements but its initializer provides ",
                       stmt.init_list.size()));
      }
      if (stmt.is_const && stmt.init_list.empty()) {
        sema_error(stmt.loc, cat("const array '", stmt.name,
                                 "' requires an initializer"));
      }
    } else {
      if (stmt.is_const && !stmt.value) {
        sema_error(stmt.loc, cat("const variable '", stmt.name,
                                 "' requires an initializer"));
      }
      if (stmt.value) check_expr_value(*stmt.value);
    }
    declare(stmt.loc, stmt.name, std::move(info));
  }

  void check_assign(const Stmt& stmt) {
    const Expr& target = *stmt.target;
    if (target.kind == Expr::Kind::kVarRef) {
      const SymbolInfo& info = resolve(target.loc, target.name);
      if (info.is_array) {
        sema_error(target.loc, cat("cannot assign to array '", target.name,
                                   "' as a whole"));
      }
      if (info.is_const) {
        sema_error(target.loc, cat("cannot assign to const '", target.name,
                                   "'"));
      }
    } else if (target.kind == Expr::Kind::kIndex) {
      const SymbolInfo& info = resolve(target.loc, target.name);
      check_index(target, info);
      if (info.is_const) {
        sema_error(target.loc, cat("cannot store into const array '",
                                   target.name, "'"));
      }
    } else {
      sema_error(target.loc, "assignment target must be a variable or an "
                             "array element");
    }
    check_expr_value(*stmt.value);
  }

  // ---- expressions ------------------------------------------------------------
  void check_index(const Expr& expr, const SymbolInfo& info) {
    if (!info.is_array) {
      sema_error(expr.loc, cat("'", expr.name, "' is not an array"));
    }
    const std::size_t expected = info.any_length ? 1 : info.dims.size();
    if (expr.indices.size() != expected) {
      sema_error(expr.loc, cat("array '", expr.name, "' expects ", expected,
                               " index(es), got ", expr.indices.size()));
    }
    for (const auto& index : expr.indices) check_expr_value(*index);
  }

  void check_call(const Expr& expr, bool value_needed) {
    const auto it = functions_.find(expr.name);
    if (it == functions_.end()) {
      sema_error(expr.loc, cat("call to undefined function '", expr.name,
                               "'"));
    }
    const FuncDecl& callee = *it->second;
    if (value_needed && !callee.returns_value) {
      sema_error(expr.loc, cat("void function '", expr.name,
                               "' used where a value is required"));
    }
    if (expr.args.size() != callee.params.size()) {
      sema_error(expr.loc,
                 cat("function '", expr.name, "' expects ",
                     callee.params.size(), " argument(s), got ",
                     expr.args.size()));
    }
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
      const Expr& arg = *expr.args[i];
      const ParamDecl& param = callee.params[i];
      if (param.is_array) {
        if (arg.kind != Expr::Kind::kVarRef) {
          sema_error(arg.loc, cat("argument ", i + 1, " of '", expr.name,
                                  "' must name an array"));
        }
        const SymbolInfo& info = resolve(arg.loc, arg.name);
        if (!info.is_array) {
          sema_error(arg.loc, cat("argument ", i + 1, " of '", expr.name,
                                  "' must be an array"));
        }
        if (!param.dims.empty() && !info.any_length &&
            info.dims != param.dims) {
          sema_error(arg.loc, cat("array argument ", i + 1, " of '",
                                  expr.name,
                                  "' has mismatching dimensions"));
        }
      } else {
        check_expr_value(arg);
      }
    }
    if (current_function_ != nullptr) {
      call_edges_.emplace(current_function_->name, expr.name);
    }
  }

  /// Checks an expression that must produce a scalar value.
  void check_expr_value(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        break;
      case Expr::Kind::kVarRef: {
        const SymbolInfo& info = resolve(expr.loc, expr.name);
        if (info.is_array) {
          sema_error(expr.loc, cat("array '", expr.name,
                                   "' used where a scalar is required"));
        }
        break;
      }
      case Expr::Kind::kIndex:
        check_index(expr, resolve(expr.loc, expr.name));
        break;
      case Expr::Kind::kUnary:
        check_expr_value(*expr.lhs);
        break;
      case Expr::Kind::kBinary:
        check_expr_value(*expr.lhs);
        check_expr_value(*expr.rhs);
        break;
      case Expr::Kind::kCall:
        check_call(expr, /*value_needed=*/true);
        break;
    }
  }

  // ---- recursion ---------------------------------------------------------------
  void check_recursion() const {
    // DFS over the call graph; a back edge means (mutual) recursion, which
    // the inlining lowering cannot express.
    std::map<std::string, int> state;  // 0 new, 1 open, 2 done
    for (const auto& [name, function] : functions_) {
      if (state[name] == 0) dfs_recursion(name, state);
    }
  }

  void dfs_recursion(const std::string& name,
                     std::map<std::string, int>& state) const {
    state[name] = 1;
    const auto [begin, end] = call_edges_.equal_range(name);
    for (auto it = begin; it != end; ++it) {
      const std::string& callee = it->second;
      if (state[callee] == 1) {
        fail(cat("semantic error: recursion detected through function '",
                 callee, "' (MiniC inlines all calls)"));
      }
      if (state[callee] == 0) dfs_recursion(callee, state);
    }
    state[name] = 2;
  }

  const Program& program_;
  bool require_main_;
  std::map<std::string, const FuncDecl*> functions_;
  std::vector<std::map<std::string, SymbolInfo>> scopes_;
  std::multimap<std::string, std::string> call_edges_;
  const FuncDecl* current_function_ = nullptr;
  int loop_depth_ = 0;
};

}  // namespace

void check_program(const Program& program, bool require_main) {
  Checker(program, require_main).run();
}

}  // namespace amdrel::minic
