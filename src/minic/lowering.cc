#include "minic/lowering.h"

#include <map>
#include <variant>
#include <vector>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::minic {

namespace {

using ir::BlockId;
using ir::OpKind;
using ir::TacInstr;
using ir::TacProgram;
using ir::Terminator;

/// What a name resolves to during lowering.
struct ScalarBinding {
  int reg = -1;
  bool is_const = false;
};
struct ArrayBinding {
  int array = -1;  ///< index into TacProgram::arrays
};
using Binding = std::variant<ScalarBinding, ArrayBinding>;

struct LoopContext {
  BlockId continue_target = ir::kNoBlock;
  BlockId break_target = ir::kNoBlock;
};

class Lowerer {
 public:
  Lowerer(const Program& program, std::string name)
      : program_(program) {
    prog_.name = std::move(name);
  }

  TacProgram run() {
    for (const auto& function : program_.functions) {
      functions_[function.name] = &function;
    }

    const BlockId entry = new_block("entry");
    prog_.entry = entry;
    start_block(entry);

    // Globals: arrays become shared-memory symbols, scalars become
    // registers initialized in the entry block.
    push_scope();
    for (const auto& global : program_.globals) lower_decl(*global);

    // Inline main's body as the top-level frame.
    const FuncDecl& main_fn = *functions_.at("main");
    return_regs_.push_back(main_fn.returns_value ? fresh_reg("main.ret") : -1);
    return_blocks_.push_back(new_block("program_exit"));
    if (return_regs_.back() != -1) emit_const(return_regs_.back(), 0);
    push_scope();
    lower_stmt(*main_fn.body);
    pop_scope();
    if (!terminated_) {
      terminate(Terminator{Terminator::Kind::kJmp, -1, return_blocks_.back(),
                           ir::kNoBlock, -1});
    }
    start_block(return_blocks_.back());
    terminate(Terminator{Terminator::Kind::kRet, -1, ir::kNoBlock,
                         ir::kNoBlock, return_regs_.back()});
    return_blocks_.pop_back();
    return_regs_.pop_back();
    pop_scope();

    prog_.validate();
    return std::move(prog_);
  }

 private:
  // ---- block plumbing ---------------------------------------------------
  BlockId new_block(const std::string& name) {
    ir::TacBlock block;
    block.id = static_cast<BlockId>(prog_.blocks.size());
    block.name = cat("bb", block.id, ".", name);
    prog_.blocks.push_back(std::move(block));
    return prog_.blocks.back().id;
  }

  void start_block(BlockId id) {
    current_ = id;
    terminated_ = false;
  }

  void emit(TacInstr instr) {
    require(!terminated_, "lowering: emit into terminated block");
    prog_.blocks[current_].body.push_back(instr);
  }

  void terminate(Terminator term) {
    require(!terminated_, "lowering: block terminated twice");
    prog_.blocks[current_].term = term;
    terminated_ = true;
  }

  void jump_to(BlockId target) {
    terminate(
        Terminator{Terminator::Kind::kJmp, -1, target, ir::kNoBlock, -1});
  }

  void branch(int cond_reg, BlockId if_true, BlockId if_false) {
    terminate(
        Terminator{Terminator::Kind::kBr, cond_reg, if_true, if_false, -1});
  }

  // ---- registers & scopes -------------------------------------------------
  int fresh_reg(const std::string& name = {}) {
    const int reg = prog_.num_regs++;
    prog_.reg_names.push_back(name);
    return reg;
  }

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void bind(const std::string& name, Binding binding) {
    scopes_.back()[name] = std::move(binding);
  }

  const Binding& resolve(SourceLoc loc, const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    fail(cat("lowering: unresolved identifier '", name, "' at line ",
             loc.line, " (sema should have caught this)"));
  }

  // ---- helpers ----------------------------------------------------------------
  void emit_const(int dst, std::int64_t value) {
    TacInstr instr;
    instr.op = OpKind::kConst;
    instr.dst = dst;
    instr.imm = value;
    emit(instr);
  }

  int materialize_const(std::int64_t value) {
    const int reg = fresh_reg();
    emit_const(reg, value);
    return reg;
  }

  int emit_binary(OpKind op, int a, int b) {
    TacInstr instr;
    instr.op = op;
    instr.dst = fresh_reg();
    instr.src1 = a;
    instr.src2 = b;
    emit(instr);
    return instr.dst;
  }

  int emit_unary(OpKind op, int a) {
    TacInstr instr;
    instr.op = op;
    instr.dst = fresh_reg();
    instr.src1 = a;
    emit(instr);
    return instr.dst;
  }

  void emit_copy(int dst, int src) {
    TacInstr instr;
    instr.op = OpKind::kCopy;
    instr.dst = dst;
    instr.src1 = src;
    emit(instr);
  }

  static OpKind binop_kind(BinaryOp op) {
    switch (op) {
      case BinaryOp::kAdd: return OpKind::kAdd;
      case BinaryOp::kSub: return OpKind::kSub;
      case BinaryOp::kMul: return OpKind::kMul;
      case BinaryOp::kDiv: return OpKind::kDiv;
      case BinaryOp::kMod: return OpKind::kMod;
      case BinaryOp::kAnd: return OpKind::kAnd;
      case BinaryOp::kOr: return OpKind::kOr;
      case BinaryOp::kXor: return OpKind::kXor;
      case BinaryOp::kShl: return OpKind::kShl;
      case BinaryOp::kShr: return OpKind::kShr;
      case BinaryOp::kEq: return OpKind::kCmpEq;
      case BinaryOp::kNe: return OpKind::kCmpNe;
      case BinaryOp::kLt: return OpKind::kCmpLt;
      case BinaryOp::kLe: return OpKind::kCmpLe;
      case BinaryOp::kGt: return OpKind::kCmpGt;
      case BinaryOp::kGe: return OpKind::kCmpGe;
      case BinaryOp::kLogicalAnd:
      case BinaryOp::kLogicalOr:
        break;
    }
    fail("lowering: logical op has no direct TAC kind");
  }

  // ---- declarations --------------------------------------------------------------
  void lower_decl(const Stmt& stmt) {
    if (stmt.dims.empty()) {
      ScalarBinding binding;
      binding.reg = fresh_reg(stmt.name);
      binding.is_const = stmt.is_const;
      if (stmt.value) {
        emit_copy(binding.reg, lower_expr(*stmt.value));
      } else {
        emit_const(binding.reg, 0);
      }
      bind(stmt.name, binding);
      return;
    }

    ir::ArraySymbol symbol;
    symbol.name = unique_array_name(stmt.name);
    symbol.dims = stmt.dims;
    symbol.size = 1;
    for (std::int64_t dim : stmt.dims) symbol.size *= dim;
    symbol.is_const = stmt.is_const;
    if (stmt.is_const) {
      symbol.init.reserve(stmt.init_list.size());
      for (std::int64_t v : stmt.init_list) {
        symbol.init.push_back(static_cast<std::int32_t>(v));
      }
    }
    const int array = static_cast<int>(prog_.arrays.size());
    prog_.arrays.push_back(std::move(symbol));
    bind(stmt.name, ArrayBinding{array});

    // A non-const array with an initializer list re-initializes at the
    // declaration point, like a C auto array.
    if (!stmt.is_const && !stmt.init_list.empty()) {
      for (std::size_t i = 0; i < stmt.init_list.size(); ++i) {
        TacInstr store;
        store.op = OpKind::kStore;
        store.array = array;
        store.src1 = materialize_const(static_cast<std::int64_t>(i));
        store.src2 = materialize_const(stmt.init_list[i]);
        emit(store);
      }
    }
  }

  std::string unique_array_name(const std::string& base) {
    const int n = array_name_counter_[base]++;
    return n == 0 ? base : cat(base, "#", n);
  }

  // ---- statements -----------------------------------------------------------------
  void lower_stmt(const Stmt& stmt) {
    if (terminated_) {
      // Unreachable code after return/break: keep lowering into a dead
      // block so diagnostics and structure stay intact.
      start_block(new_block("dead"));
    }
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        push_scope();
        for (const auto& child : stmt.body) lower_stmt(*child);
        pop_scope();
        break;
      case Stmt::Kind::kDecl:
        lower_decl(stmt);
        break;
      case Stmt::Kind::kAssign:
        lower_assign(stmt);
        break;
      case Stmt::Kind::kIf:
        lower_if(stmt);
        break;
      case Stmt::Kind::kWhile:
        lower_while(stmt);
        break;
      case Stmt::Kind::kDoWhile:
        lower_do_while(stmt);
        break;
      case Stmt::Kind::kFor:
        lower_for(stmt);
        break;
      case Stmt::Kind::kReturn: {
        if (stmt.value) {
          emit_copy(return_regs_.back(), lower_expr(*stmt.value));
        }
        jump_to(return_blocks_.back());
        break;
      }
      case Stmt::Kind::kBreak:
        jump_to(loops_.back().break_target);
        break;
      case Stmt::Kind::kContinue:
        jump_to(loops_.back().continue_target);
        break;
      case Stmt::Kind::kExpr:
        (void)lower_expr_maybe_void(*stmt.value);
        break;
    }
  }

  void lower_assign(const Stmt& stmt) {
    const Expr& target = *stmt.target;
    if (target.kind == Expr::Kind::kVarRef) {
      const auto& binding =
          std::get<ScalarBinding>(resolve(target.loc, target.name));
      int value;
      if (stmt.compound) {
        value = emit_binary(binop_kind(*stmt.compound), binding.reg,
                            lower_expr(*stmt.value));
      } else {
        value = lower_expr(*stmt.value);
      }
      emit_copy(binding.reg, value);
      return;
    }
    // Array element: evaluate the flattened index once (C evaluates the
    // lvalue once even for compound assignment).
    const auto& binding =
        std::get<ArrayBinding>(resolve(target.loc, target.name));
    const int index = lower_flat_index(target, binding.array);
    int value;
    if (stmt.compound) {
      TacInstr load;
      load.op = OpKind::kLoad;
      load.dst = fresh_reg();
      load.array = binding.array;
      load.src1 = index;
      emit(load);
      value = emit_binary(binop_kind(*stmt.compound), load.dst,
                          lower_expr(*stmt.value));
    } else {
      value = lower_expr(*stmt.value);
    }
    TacInstr store;
    store.op = OpKind::kStore;
    store.array = binding.array;
    store.src1 = index;
    store.src2 = value;
    emit(store);
  }

  void lower_if(const Stmt& stmt) {
    const BlockId then_bb = new_block("if.then");
    const BlockId merge_bb = new_block("if.end");
    const BlockId else_bb =
        stmt.else_stmt ? new_block("if.else") : merge_bb;

    lower_condition(*stmt.cond, then_bb, else_bb);

    start_block(then_bb);
    lower_stmt(*stmt.then_stmt);
    if (!terminated_) jump_to(merge_bb);

    if (stmt.else_stmt) {
      start_block(else_bb);
      lower_stmt(*stmt.else_stmt);
      if (!terminated_) jump_to(merge_bb);
    }
    start_block(merge_bb);
  }

  void lower_while(const Stmt& stmt) {
    const BlockId cond_bb = new_block("while.cond");
    const BlockId body_bb = new_block("while.body");
    const BlockId exit_bb = new_block("while.end");

    jump_to(cond_bb);
    start_block(cond_bb);
    lower_condition(*stmt.cond, body_bb, exit_bb);

    loops_.push_back({cond_bb, exit_bb});
    start_block(body_bb);
    lower_stmt(*stmt.body_stmt);
    if (!terminated_) jump_to(cond_bb);
    loops_.pop_back();

    start_block(exit_bb);
  }

  void lower_do_while(const Stmt& stmt) {
    const BlockId body_bb = new_block("do.body");
    const BlockId cond_bb = new_block("do.cond");
    const BlockId exit_bb = new_block("do.end");

    jump_to(body_bb);
    loops_.push_back({cond_bb, exit_bb});
    start_block(body_bb);
    lower_stmt(*stmt.body_stmt);
    if (!terminated_) jump_to(cond_bb);
    loops_.pop_back();

    start_block(cond_bb);
    lower_condition(*stmt.cond, body_bb, exit_bb);
    start_block(exit_bb);
  }

  void lower_for(const Stmt& stmt) {
    push_scope();
    if (stmt.for_init) lower_stmt(*stmt.for_init);

    const BlockId cond_bb = new_block("for.cond");
    const BlockId body_bb = new_block("for.body");
    const BlockId step_bb = new_block("for.step");
    const BlockId exit_bb = new_block("for.end");

    jump_to(cond_bb);
    start_block(cond_bb);
    if (stmt.cond) {
      lower_condition(*stmt.cond, body_bb, exit_bb);
    } else {
      jump_to(body_bb);
    }

    loops_.push_back({step_bb, exit_bb});
    start_block(body_bb);
    lower_stmt(*stmt.body_stmt);
    if (!terminated_) jump_to(step_bb);
    loops_.pop_back();

    start_block(step_bb);
    if (stmt.for_step) lower_stmt(*stmt.for_step);
    if (!terminated_) jump_to(cond_bb);

    start_block(exit_bb);
    pop_scope();
  }

  /// Lowers a boolean context with short-circuit evaluation: control
  /// transfers to if_true / if_false without materializing a value.
  void lower_condition(const Expr& expr, BlockId if_true, BlockId if_false) {
    if (expr.kind == Expr::Kind::kBinary) {
      if (expr.bin_op == BinaryOp::kLogicalAnd) {
        const BlockId mid = new_block("and.rhs");
        lower_condition(*expr.lhs, mid, if_false);
        start_block(mid);
        lower_condition(*expr.rhs, if_true, if_false);
        return;
      }
      if (expr.bin_op == BinaryOp::kLogicalOr) {
        const BlockId mid = new_block("or.rhs");
        lower_condition(*expr.lhs, if_true, mid);
        start_block(mid);
        lower_condition(*expr.rhs, if_true, if_false);
        return;
      }
    }
    if (expr.kind == Expr::Kind::kUnary &&
        expr.un_op == UnaryOp::kLogicalNot) {
      lower_condition(*expr.lhs, if_false, if_true);
      return;
    }
    branch(lower_expr(expr), if_true, if_false);
  }

  // ---- expressions ------------------------------------------------------------------
  int lower_flat_index(const Expr& expr, int array) {
    const ir::ArraySymbol& symbol = prog_.arrays[array];
    if (expr.indices.size() == 1) return lower_expr(*expr.indices[0]);
    require(symbol.dims.size() == expr.indices.size(),
            "lowering: index arity mismatch (sema should have caught this)");
    // row-major: ((i0 * d1 + i1) * d2 + i2) ...
    int index = lower_expr(*expr.indices[0]);
    for (std::size_t d = 1; d < expr.indices.size(); ++d) {
      const int scaled =
          emit_binary(OpKind::kMul, index,
                      materialize_const(symbol.dims[d]));
      index = emit_binary(OpKind::kAdd, scaled, lower_expr(*expr.indices[d]));
    }
    return index;
  }

  int lower_expr_maybe_void(const Expr& expr) {
    if (expr.kind == Expr::Kind::kCall) return lower_call(expr);
    return lower_expr(expr);
  }

  int lower_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        return materialize_const(expr.value);
      case Expr::Kind::kVarRef:
        return std::get<ScalarBinding>(resolve(expr.loc, expr.name)).reg;
      case Expr::Kind::kIndex: {
        const auto& binding =
            std::get<ArrayBinding>(resolve(expr.loc, expr.name));
        TacInstr load;
        load.op = OpKind::kLoad;
        load.dst = fresh_reg();
        load.array = binding.array;
        load.src1 = lower_flat_index(expr, binding.array);
        emit(load);
        return load.dst;
      }
      case Expr::Kind::kUnary:
        switch (expr.un_op) {
          case UnaryOp::kNeg:
            return emit_unary(OpKind::kNeg, lower_expr(*expr.lhs));
          case UnaryOp::kBitNot:
            return emit_unary(OpKind::kNot, lower_expr(*expr.lhs));
          case UnaryOp::kLogicalNot:
            return emit_binary(OpKind::kCmpEq, lower_expr(*expr.lhs),
                               materialize_const(0));
        }
        fail("lowering: bad unary op");
      case Expr::Kind::kBinary: {
        if (expr.bin_op == BinaryOp::kLogicalAnd ||
            expr.bin_op == BinaryOp::kLogicalOr) {
          return lower_logical_value(expr);
        }
        const int lhs = lower_expr(*expr.lhs);
        const int rhs = lower_expr(*expr.rhs);
        return emit_binary(binop_kind(expr.bin_op), lhs, rhs);
      }
      case Expr::Kind::kCall: {
        const int reg = lower_call(expr);
        require(reg != -1, "lowering: void call used as value");
        return reg;
      }
    }
    fail("lowering: bad expression kind");
  }

  /// Materializes `a && b` / `a || b` as 0/1 through the CFG (short
  /// circuit preserved).
  int lower_logical_value(const Expr& expr) {
    const int result = fresh_reg("logical");
    const BlockId true_bb = new_block("logic.true");
    const BlockId false_bb = new_block("logic.false");
    const BlockId merge_bb = new_block("logic.end");
    lower_condition(expr, true_bb, false_bb);
    start_block(true_bb);
    emit_const(result, 1);
    jump_to(merge_bb);
    start_block(false_bb);
    emit_const(result, 0);
    jump_to(merge_bb);
    start_block(merge_bb);
    return result;
  }

  /// Inlines a call; returns the value register or -1 for void callees.
  int lower_call(const Expr& call) {
    const FuncDecl& callee = *functions_.at(call.name);
    require(++inline_depth_ < 64,
            "lowering: inline depth guard exceeded");

    // Evaluate arguments in the caller's scope first.
    std::vector<Binding> bindings;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const ParamDecl& param = callee.params[i];
      if (param.is_array) {
        bindings.push_back(resolve(call.args[i]->loc, call.args[i]->name));
      } else {
        ScalarBinding scalar;
        scalar.reg = fresh_reg(cat(callee.name, ".", param.name));
        emit_copy(scalar.reg, lower_expr(*call.args[i]));
        bindings.push_back(scalar);
      }
    }

    const int return_reg =
        callee.returns_value ? fresh_reg(cat(callee.name, ".ret")) : -1;
    if (return_reg != -1) emit_const(return_reg, 0);
    const BlockId continuation = new_block(cat(callee.name, ".cont"));

    return_regs_.push_back(return_reg);
    return_blocks_.push_back(continuation);
    push_scope();
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      bind(callee.params[i].name, bindings[i]);
    }
    lower_stmt(*callee.body);
    if (!terminated_) jump_to(continuation);
    pop_scope();
    return_blocks_.pop_back();
    return_regs_.pop_back();

    start_block(continuation);
    --inline_depth_;
    return return_reg;
  }

  const Program& program_;
  TacProgram prog_;
  std::map<std::string, const FuncDecl*> functions_;
  std::vector<std::map<std::string, Binding>> scopes_;
  std::map<std::string, int> array_name_counter_;
  std::vector<int> return_regs_;
  std::vector<BlockId> return_blocks_;
  std::vector<LoopContext> loops_;
  BlockId current_ = ir::kNoBlock;
  bool terminated_ = true;
  int inline_depth_ = 0;
};

}  // namespace

ir::TacProgram lower(const Program& program, const std::string& program_name) {
  return Lowerer(program, program_name).run();
}

}  // namespace amdrel::minic
