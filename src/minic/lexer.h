#pragma once

#include <string>
#include <vector>

#include "minic/token.h"

namespace amdrel::minic {

/// Tokenizes MiniC source. Throws Error with line/column context on
/// malformed input (unterminated comments, stray characters, overflowing
/// literals). The token stream always ends with one kEof token.
std::vector<Token> tokenize(const std::string& source);

}  // namespace amdrel::minic
