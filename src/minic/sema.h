#pragma once

#include "minic/ast.h"

namespace amdrel::minic {

/// Semantic checks for a parsed MiniC program. Throws Error (with source
/// location) on the first violation:
///  * undeclared / redeclared identifiers, const violations;
///  * scalar/array misuse, wrong index arity, bad array arguments;
///  * unknown callees, arity mismatches, void calls used as values;
///  * break/continue outside loops, return-value mismatches;
///  * recursion (direct or mutual) — MiniC inlines every call, so the
///    call graph must be acyclic;
///  * when `require_main` is set, a function `main` must exist and take
///    no parameters (the whole-program entry the methodology analyzes).
void check_program(const Program& program, bool require_main = true);

}  // namespace amdrel::minic
