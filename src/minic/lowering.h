#pragma once

#include "ir/tac.h"
#include "minic/ast.h"

namespace amdrel::minic {

/// Lowers a semantically-checked MiniC program to three-address code:
///  * every call is inlined (sema guarantees an acyclic call graph), so
///    the result is one flat program rooted at main — the single CDFG the
///    partitioning methodology analyzes;
///  * scalars live in virtual registers; only arrays touch the shared
///    data memory (kLoad/kStore), matching the platform model;
///  * multi-dimensional indexing is flattened into explicit multiply/add
///    address arithmetic, so static weights include it, as a real
///    compiler's lowering would;
///  * && and || short-circuit through the CFG like C requires, which also
///    gives the CDFG the basic-block structure a SUIF-style front-end
///    would produce.
ir::TacProgram lower(const Program& program,
                     const std::string& program_name = "main");

}  // namespace amdrel::minic
