#include "minic/frontend.h"

#include "minic/lowering.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace amdrel::minic {

ir::TacProgram compile(const std::string& source,
                       const std::string& program_name) {
  Program ast = parse(source);
  check_program(ast);
  return lower(ast, program_name);
}

}  // namespace amdrel::minic
