#include "coarsegrain/cgc_mapper.h"

#include "support/error.h"

namespace amdrel::coarsegrain {

CgcBlockMapping map_block_to_cgc(const ir::Dfg& dfg,
                                 const platform::Platform& platform) {
  CgcBlockMapping mapping;
  mapping.schedule = schedule_dfg_on_cgc(dfg, platform.cgc);
  mapping.cycles_per_invocation_fpga =
      platform.cgc_to_fpga_cycles(mapping.schedule.total_cgc_cycles);
  return mapping;
}

std::int64_t cgc_total_cycles(const std::vector<CgcBlockMapping>& mappings,
                              const std::vector<ir::BlockId>& blocks,
                              const ir::ProfileData& profile) {
  std::int64_t total = 0;
  for (ir::BlockId id : blocks) {
    require(id >= 0 && id < static_cast<ir::BlockId>(mappings.size()),
            "cgc_total_cycles: block id out of range");
    total += mappings[id].cycles_per_invocation_fpga *
             static_cast<std::int64_t>(profile.count(id));
  }
  return total;
}

}  // namespace amdrel::coarsegrain
