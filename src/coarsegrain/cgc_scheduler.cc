#include "coarsegrain/cgc_scheduler.h"

#include <algorithm>
#include <numeric>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::coarsegrain {

namespace {

using ir::Dfg;
using ir::NodeId;
using ir::OpClass;
using ir::OpKind;

bool is_compute(OpKind kind) {
  const OpClass cls = ir::op_class(kind);
  return cls == OpClass::kAlu || cls == OpClass::kMul;
}

bool is_mem(OpKind kind) { return ir::op_class(kind) == OpClass::kMem; }

/// Occupancy grid of every CGC for the cycle currently being filled.
class CycleState {
 public:
  explicit CycleState(const platform::CgcModel& cgc)
      : cgc_(cgc),
        used_(static_cast<std::size_t>(cgc.count) * cgc.rows * cgc.cols,
              false) {}

  /// Finds a free cell with row >= min_row in CGC `c`; returns {row, col}
  /// 1-based or {-1, -1}. Prefers the shallowest row so later chained
  /// successors keep room to grow downwards.
  std::pair<int, int> find_cell(int c, int min_row) const {
    for (int row = min_row; row <= cgc_.rows; ++row) {
      for (int col = 1; col <= cgc_.cols; ++col) {
        if (!used_[index(c, row, col)]) return {row, col};
      }
    }
    return {-1, -1};
  }

  void occupy(int c, int row, int col) { used_[index(c, row, col)] = true; }

 private:
  std::size_t index(int c, int row, int col) const {
    return (static_cast<std::size_t>(c) * cgc_.rows + (row - 1)) * cgc_.cols +
           (col - 1);
  }

  const platform::CgcModel& cgc_;
  std::vector<bool> used_;
};

}  // namespace

CgcSchedule schedule_dfg_on_cgc(const ir::Dfg& dfg,
                                const platform::CgcModel& cgc) {
  require(!dfg.has_division(),
          "CGC scheduling: DFG contains a division/modulo, which the CGC "
          "data-path cannot execute");
  require(cgc.count > 0 && cgc.rows > 0 && cgc.cols > 0,
          "CGC scheduling: empty data-path");

  CgcSchedule sched;
  sched.start.assign(dfg.size(), -1);
  sched.finish.assign(dfg.size(), 0);
  sched.placement.assign(dfg.size(), CgcPlacement{});

  std::vector<bool> scheduled(dfg.size(), false);
  std::vector<NodeId> priority;      // ops needing a slot or port, by rank
  std::vector<NodeId> passthrough;   // copies, outputs, DMA-drained stores

  for (NodeId id = 0; id < dfg.size(); ++id) {
    const OpKind kind = dfg.node(id).kind;
    if (kind == OpKind::kConst || kind == OpKind::kInput) {
      scheduled[id] = true;
      sched.finish[id] = 0;
    } else if (kind == OpKind::kCopy || kind == OpKind::kOutput) {
      passthrough.push_back(id);
    } else if (is_compute(kind)) {
      priority.push_back(id);
    } else if (is_mem(kind)) {
      require(cgc.mem_ports > 0,
              "CGC scheduling: memory operation but the data-path has no "
              "shared-memory ports");
      sched.mem_accesses++;
      if (cgc.dma_memory) {
        if (kind == OpKind::kLoad) {
          // DMA-prefetched into the register bank before the kernel runs.
          scheduled[id] = true;
          sched.start[id] = 0;
          sched.finish[id] = 0;
        } else {
          // Stores drain afterwards; the value just has to be produced.
          passthrough.push_back(id);
        }
      } else {
        priority.push_back(id);
      }
    }
  }

  // Priority: smaller mobility (alap - asap) first, then shallower asap
  // level, then id — the classic critical-path list-scheduling order.
  const std::vector<int> asap = dfg.asap_levels();
  const std::vector<int> alap = dfg.alap_levels();
  std::sort(priority.begin(), priority.end(), [&](NodeId a, NodeId b) {
    const int ma = alap[a] - asap[a];
    const int mb = alap[b] - asap[b];
    if (ma != mb) return ma < mb;
    if (asap[a] != asap[b]) return asap[a] < asap[b];
    return a < b;
  });

  auto resolve_passthrough = [&] {
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId id : passthrough) {
        if (scheduled[id]) continue;
        const Dfg::Node& node = dfg.node(id);
        bool ready = true;
        std::int64_t t = 0;
        for (NodeId pred : node.operands) {
          if (!scheduled[pred]) {
            ready = false;
            break;
          }
          t = std::max(t, sched.finish[pred]);
        }
        if (ready) {
          scheduled[id] = true;
          sched.start[id] = t;
          sched.finish[id] = t;
          changed = true;
        }
      }
    }
  };
  resolve_passthrough();

  std::vector<std::int64_t> port_free(
      static_cast<std::size_t>(std::max(cgc.mem_ports, 1)), 0);
  std::size_t remaining = priority.size();

  std::int64_t cycle = 0;
  constexpr std::int64_t kCycleGuard = 1 << 26;
  while (remaining > 0) {
    require(cycle < kCycleGuard,
            "CGC scheduling: cycle guard exceeded (dependency deadlock?)");
    CycleState state(cgc);

    for (NodeId id : priority) {
      if (scheduled[id]) continue;
      const Dfg::Node& node = dfg.node(id);

      // Readiness at `cycle`: every operand either finished by now, or —
      // for compute ops only — is a compute op started this very cycle we
      // can chain below (all such operands must sit in one CGC).
      bool ready = true;
      int chain_cgc = -1;
      int chain_min_row = 1;
      for (NodeId pred : node.operands) {
        if (!scheduled[pred]) {
          ready = false;
          break;
        }
        if (sched.finish[pred] <= cycle) continue;
        const bool pred_chainable = cgc.enable_chaining &&
                                    is_compute(dfg.node(pred).kind) &&
                                    sched.start[pred] == cycle &&
                                    sched.placement[pred].bound();
        if (!is_compute(node.kind) || !pred_chainable) {
          ready = false;
          break;
        }
        const CgcPlacement& p = sched.placement[pred];
        if (chain_cgc == -1) chain_cgc = p.cgc;
        if (chain_cgc != p.cgc) {
          ready = false;  // cannot chain across two CGCs at once
          break;
        }
        chain_min_row = std::max(chain_min_row, p.row + 1);
      }
      if (!ready) continue;
      if (chain_min_row > cgc.rows) continue;  // chain too deep this cycle

      if (is_compute(node.kind)) {
        int placed_cgc = -1;
        std::pair<int, int> cell{-1, -1};
        if (chain_cgc != -1) {
          cell = state.find_cell(chain_cgc, chain_min_row);
          placed_cgc = chain_cgc;
        } else {
          for (int c = 0; c < cgc.count && cell.first == -1; ++c) {
            cell = state.find_cell(c, 1);
            placed_cgc = c;
          }
        }
        if (cell.first == -1) continue;  // no slot this cycle
        state.occupy(placed_cgc, cell.first, cell.second);
        scheduled[id] = true;
        sched.start[id] = cycle;
        sched.finish[id] = cycle + 1;
        sched.placement[id] = {placed_cgc, cell.first, cell.second};
        --remaining;
      } else {  // port-scheduled memory access (dma_memory == false)
        auto port = std::min_element(port_free.begin(), port_free.end());
        if (*port > cycle) continue;  // all ports busy
        scheduled[id] = true;
        sched.start[id] = cycle;
        sched.finish[id] = cycle + cgc.mem_access_cgc_cycles;
        *port = sched.finish[id];
        --remaining;
      }
    }
    resolve_passthrough();
    ++cycle;
  }
  resolve_passthrough();

  std::int64_t compute_latency = 0;
  for (NodeId id = 0; id < dfg.size(); ++id) {
    compute_latency = std::max(compute_latency, sched.finish[id]);
  }
  sched.total_cgc_cycles = compute_latency;
  if (cgc.dma_memory && sched.mem_accesses > 0) {
    const std::int64_t bursts =
        (sched.mem_accesses + cgc.mem_ports - 1) / cgc.mem_ports;
    sched.total_cgc_cycles += bursts * cgc.mem_access_cgc_cycles;
  }
  sched.configurations = compute_latency;

  // Register-bank pressure: a value produced at finish[u] and consumed by
  // a user whose start is later than (or equal to) that boundary lives in
  // the register bank across every boundary in between. Chained uses
  // (same cycle) bypass the bank.
  std::vector<int> live(static_cast<std::size_t>(compute_latency) + 1, 0);
  for (NodeId u = 0; u < dfg.size(); ++u) {
    const OpKind kind = dfg.node(u).kind;
    if (!is_compute(kind) && !is_mem(kind)) continue;
    std::int64_t last_use = sched.finish[u];
    for (NodeId v : dfg.users(u)) {
      if (dfg.node(v).kind == OpKind::kOutput) {
        last_use = compute_latency;  // live-outs persist to the end
      } else if (sched.start[v] >= sched.finish[u]) {
        last_use = std::max(last_use, sched.start[v]);
      }
    }
    for (std::int64_t b = sched.finish[u];
         b < last_use && b < static_cast<std::int64_t>(live.size()); ++b) {
      live[b]++;
    }
  }
  for (int count : live) {
    sched.peak_registers = std::max(sched.peak_registers, count);
  }

  return sched;
}

}  // namespace amdrel::coarsegrain
