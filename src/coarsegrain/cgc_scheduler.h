#pragma once

#include <cstdint>
#include <vector>

#include "ir/dfg.h"
#include "platform/cgc_model.h"

namespace amdrel::coarsegrain {

/// Physical slot a compute operation is bound to: CGC index, row (1-based,
/// the chaining depth) and column.
struct CgcPlacement {
  int cgc = -1;
  int row = -1;
  int col = -1;
  bool bound() const { return cgc >= 0; }
};

/// Result of mapping one DFG onto the CGC data-path (paper section 3.3:
/// list-based scheduling followed by CGC binding). Times are CGC clock
/// cycles (period T_CGC); a compute node scheduled at cycle t produces its
/// value for other cycles at t+1, while nodes chained below it in the same
/// CGC consume it within cycle t itself.
struct CgcSchedule {
  std::vector<std::int64_t> start;   ///< per node; -1 for structural nodes
  std::vector<std::int64_t> finish;  ///< cycle at which the value is ready
  std::vector<CgcPlacement> placement;

  std::int64_t total_cgc_cycles = 0;   ///< DFG latency in T_CGC cycles
  std::int64_t configurations = 0;     ///< interconnect contexts used
  std::int64_t mem_accesses = 0;       ///< loads+stores issued to memory
  int peak_registers = 0;              ///< register-bank pressure
};

/// Schedules and binds `dfg` on the CGC data-path. Operations execute with
/// unit delay (one T_CGC); a chain of dependent operations placed in
/// increasing rows of one CGC completes within a single cycle, which is
/// how the data-path realizes complex operations such as multiply-add.
/// Memory accesses go through `cgc.mem_ports` shared-memory ports and take
/// `cgc.mem_access_cgc_cycles` each.
///
/// Throws Error if the DFG contains divisions (the CGC node holds only a
/// multiplier and an ALU) or memory operations when the model has no
/// ports.
CgcSchedule schedule_dfg_on_cgc(const ir::Dfg& dfg,
                                const platform::CgcModel& cgc);

}  // namespace amdrel::coarsegrain
