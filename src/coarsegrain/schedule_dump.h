#pragma once

#include <string>

#include "coarsegrain/cgc_scheduler.h"

namespace amdrel::coarsegrain {

/// Human-readable cycle-by-cycle view of a CGC schedule: for each CGC
/// cycle, the operations executing in every CGC (row/column placement,
/// chains visible as same-cycle row sequences) plus memory traffic.
/// Handy when debugging the binder or documenting mappings.
std::string describe_schedule(const CgcSchedule& schedule, const ir::Dfg& dfg,
                              const platform::CgcModel& cgc);

}  // namespace amdrel::coarsegrain
