#include "coarsegrain/schedule_dump.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace amdrel::coarsegrain {

std::string describe_schedule(const CgcSchedule& schedule, const ir::Dfg& dfg,
                              const platform::CgcModel& cgc) {
  std::ostringstream os;
  os << "CGC schedule: " << schedule.total_cgc_cycles << " T_CGC cycles, "
     << schedule.mem_accesses << " memory accesses, peak "
     << schedule.peak_registers << " bank registers\n";

  // cycle -> cgc -> placements (sorted row-major for chain readability)
  std::map<std::int64_t, std::map<int, std::vector<ir::NodeId>>> by_cycle;
  std::map<std::int64_t, std::vector<ir::NodeId>> mem_by_cycle;
  for (ir::NodeId id = 0; id < dfg.size(); ++id) {
    if (schedule.start[id] < 0) continue;
    if (schedule.placement[id].bound()) {
      by_cycle[schedule.start[id]][schedule.placement[id].cgc].push_back(id);
    } else if (ir::op_class(dfg.node(id).kind) == ir::OpClass::kMem &&
               !cgc.dma_memory) {
      mem_by_cycle[schedule.start[id]].push_back(id);
    }
  }
  for (auto& [cycle, cgcs] : by_cycle) {
    os << "  cycle " << cycle << ":\n";
    for (auto& [c, nodes] : cgcs) {
      std::sort(nodes.begin(), nodes.end(), [&](ir::NodeId a, ir::NodeId b) {
        const auto& pa = schedule.placement[a];
        const auto& pb = schedule.placement[b];
        if (pa.col != pb.col) return pa.col < pb.col;
        return pa.row < pb.row;
      });
      os << "    CGC" << c << ":";
      for (const ir::NodeId id : nodes) {
        const auto& p = schedule.placement[id];
        os << " [r" << p.row << "c" << p.col << "] "
           << ir::op_name(dfg.node(id).kind) << "#" << id;
      }
      os << "\n";
    }
    const auto mem = mem_by_cycle.find(cycle);
    if (mem != mem_by_cycle.end()) {
      os << "    mem:";
      for (const ir::NodeId id : mem->second) {
        os << " " << ir::op_name(dfg.node(id).kind) << "#" << id;
      }
      os << "\n";
    }
  }
  if (cgc.dma_memory && schedule.mem_accesses > 0) {
    const std::int64_t bursts =
        (schedule.mem_accesses + cgc.mem_ports - 1) / cgc.mem_ports;
    os << "  DMA: " << schedule.mem_accesses << " accesses over " << bursts
       << " bursts (" << bursts * cgc.mem_access_cgc_cycles
       << " T_CGC cycles)\n";
  }
  return os.str();
}

}  // namespace amdrel::coarsegrain
