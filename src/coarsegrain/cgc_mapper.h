#pragma once

#include <cstdint>

#include "coarsegrain/cgc_scheduler.h"
#include "ir/cdfg.h"
#include "ir/profile.h"
#include "platform/platform.h"

namespace amdrel::coarsegrain {

/// Coarse-grain mapping of one basic block: the CGC schedule plus its
/// latency converted to FPGA clock cycles (the unit all paper tables use).
struct CgcBlockMapping {
  CgcSchedule schedule;
  std::int64_t cycles_per_invocation_fpga = 0;
};

CgcBlockMapping map_block_to_cgc(const ir::Dfg& dfg,
                                 const platform::Platform& platform);

/// Equation (3) of the paper for a set of moved blocks:
/// t_coarse = sum over moved blocks of t_to_coarse(BB_i) * Iter(BB_i),
/// in FPGA clock cycles.
std::int64_t cgc_total_cycles(const std::vector<CgcBlockMapping>& mappings,
                              const std::vector<ir::BlockId>& blocks,
                              const ir::ProfileData& profile);

}  // namespace amdrel::coarsegrain
